package expt

import (
	"bytes"
	"strings"
	"testing"

	"pmsort/internal/delivery"
	"pmsort/internal/workload"
)

func TestRunValidatesAllAlgos(t *testing.T) {
	for _, algo := range []Algo{AMS, RLM, MP, GV, Bitonic, Hist, HCQ} {
		res := Run(Spec{Algo: algo, P: 16, PerPE: 64, Levels: 2, Seed: 5})
		if res.TotalNS <= 0 {
			t.Errorf("%v: no time elapsed", algo)
		}
		if res.OutImbalance < 1 {
			t.Errorf("%v: impossible imbalance %f", algo, res.OutImbalance)
		}
	}
}

func TestRunWorkloadKinds(t *testing.T) {
	for _, kind := range []workload.Kind{workload.Uniform, workload.Skewed, workload.Sorted,
		workload.Reverse, workload.AlmostSorted, workload.OnePE} {
		res := Run(Spec{Algo: AMS, P: 8, PerPE: 50, Levels: 2, Seed: 6, Kind: kind, TieBreak: true})
		if res.TotalNS <= 0 {
			t.Errorf("%v: no time elapsed", kind)
		}
	}
	// DupHeavy without tie-breaking still sorts correctly (imbalance may
	// be large); with tie-breaking it must stay balanced.
	res := Run(Spec{Algo: AMS, P: 8, PerPE: 50, Levels: 1, Seed: 6, Kind: workload.DupHeavy, TieBreak: true})
	if res.OutImbalance > 3 {
		t.Errorf("dup-heavy with tie-breaking: imbalance %f", res.OutImbalance)
	}
}

func TestRunRepsVariesSeeds(t *testing.T) {
	rs := RunReps(Spec{Algo: AMS, P: 8, PerPE: 100, Levels: 2, Seed: 1}, 3, nil)
	if len(rs) != 3 {
		t.Fatalf("want 3 results, got %d", len(rs))
	}
	// Different seeds -> different inputs -> (almost surely) different times.
	if rs[0].TotalNS == rs[1].TotalNS && rs[1].TotalNS == rs[2].TotalNS {
		t.Errorf("all repetition times identical — seeds not varied?")
	}
}

func TestTable1Shape(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, nil)
	out := buf.String()
	for _, want := range []string{"p=512", "p=32768", "2048", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 8 { // header + title + 6 level rows
		t.Errorf("Table 1 has %d lines, want 8:\n%s", lines, out)
	}
}

func TestWeakScalingSmallGrid(t *testing.T) {
	opt := SuiteOptions{
		Ps:     []int{16, 64},
		PerPEs: []int{64, 512},
		Levels: []int{1, 2},
		Reps:   3,
		Seed:   9,
	}
	d := RunWeakScaling(opt, []Algo{AMS, RLM})
	var buf bytes.Buffer
	d.Table2(&buf)
	d.Fig7(&buf)
	d.Fig8(&buf)
	d.Fig12(&buf)
	out := buf.String()
	for _, want := range []string{"Table 2", "Figure 7", "Figure 8", "Figure 12", "p=16", "p=64"} {
		if !strings.Contains(out, want) {
			t.Errorf("weak scaling output missing %q", want)
		}
	}
	if strings.Contains(out, "-") && strings.Contains(out, "p=16\n") {
		t.Errorf("unexpected missing cells in small grid:\n%s", out)
	}
	// Every cell ran with both algorithms and level choices.
	if len(d.Cells) != 2*2*2*2 {
		t.Errorf("expected 16 cells, got %d", len(d.Cells))
	}
}

func TestBestMedianPrefersFasterLevel(t *testing.T) {
	opt := SuiteOptions{Ps: []int{64}, PerPEs: []int{64}, Levels: []int{1, 2}, Reps: 3, Seed: 3}
	d := RunWeakScaling(opt, []Algo{AMS})
	// At p=64 with tiny n/p, two levels must win (fewer startups).
	_, k, ok := d.bestMedian(AMS, 64, 64)
	if !ok || k != 2 {
		t.Errorf("best level = %d (ok=%v), want 2", k, ok)
	}
}

func TestFig10Fig11Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig10(&buf, 16, 256, 1, 4, nil)
	Fig11(&buf, 16, 256, 1, 4, nil)
	out := buf.String()
	if !strings.Contains(out, "Figure 10") || !strings.Contains(out, "Figure 11") {
		t.Errorf("figure sweep output malformed:\n%s", out)
	}
}

func TestCompareSmoke(t *testing.T) {
	var buf bytes.Buffer
	Compare(&buf, SuiteOptions{Ps: []int{16, 32}, PerPEs: []int{64}, Levels: []int{1, 2}, Reps: 1, Seed: 2})
	out := buf.String()
	if !strings.Contains(out, "MP-sort") || !strings.Contains(out, "bitonic") {
		t.Errorf("comparison output malformed:\n%s", out)
	}
}

func TestDeliveryAblationSmoke(t *testing.T) {
	var buf bytes.Buffer
	DeliveryAblation(&buf, 16, 128, 1, 5, nil)
	out := buf.String()
	for _, s := range []string{"simple", "randomized", "deterministic", "uniform", "skewed"} {
		if !strings.Contains(out, s) {
			t.Errorf("delivery ablation missing %q:\n%s", s, out)
		}
	}
}

func TestAlltoallAblationSmoke(t *testing.T) {
	var buf bytes.Buffer
	AlltoallAblation(&buf, []int{16, 32}, 64, 1, 6, nil)
	out := buf.String()
	if !strings.Contains(out, "1-factor") || !strings.Contains(out, "direct") {
		t.Errorf("alltoall ablation malformed:\n%s", out)
	}
}

func TestDeliveryStrategiesInsideSorters(t *testing.T) {
	for _, strat := range []delivery.Strategy{delivery.Simple, delivery.Deterministic} {
		res := Run(Spec{Algo: RLM, P: 12, PerPE: 40, Levels: 2, Seed: 8,
			Delivery: delivery.Options{Strategy: strat}})
		if res.OutImbalance > 1.1 {
			t.Errorf("%v: RLM output imbalance %f (want ≈1)", strat, res.OutImbalance)
		}
	}
}

func TestAlgoString(t *testing.T) {
	for a, want := range map[Algo]string{AMS: "AMS-sort", RLM: "RLM-sort", MP: "MP-sort",
		GV: "GV-sample-sort", Bitonic: "bitonic"} {
		if a.String() != want {
			t.Errorf("Algo(%d) = %q want %q", a, a.String(), want)
		}
	}
}
