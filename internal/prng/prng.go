// Package prng provides the deterministic pseudo-randomness used across
// the library: a SplitMix64 generator for sampling, and pseudorandom
// permutations built from Feistel networks with cycle walking as
// described in Appendix B of the paper (following [23, 10, 25]). The
// permutation state is tiny, so every PE can hold a replica and evaluate
// π(i) locally without communication.
package prng

// Rng is a SplitMix64 pseudo-random number generator. The zero value is a
// valid generator seeded with 0.
type Rng struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *Rng {
	return &Rng{state: seed}
}

// mix64 is the SplitMix64 output function, also used as the keyed hash
// inside Feistel rounds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 exposes the SplitMix64 finalizer as a general-purpose 64-bit
// mixing/hash function (the torture harness builds its
// order-independent multiset hash from it).
func Mix64(z uint64) uint64 { return mix64(z) }

// Next returns the next 64-bit pseudo-random value.
func (r *Rng) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Uint64n returns a pseudo-random value in 0..n-1. n must be positive.
// (Lemire-style multiply-shift reduction; the modulo bias is irrelevant
// at our sample sizes but we avoid it anyway.)
func (r *Rng) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n(0)")
	}
	// 128-bit multiply high via math/bits-free split (keeps this file
	// dependency-free); n < 2^63 in all our uses, so the simple approach
	// of rejection sampling on the top bits is fine.
	for {
		v := r.Next()
		// Rejection sampling to remove bias.
		if v < (^uint64(0) - (^uint64(0) % n)) {
			return v % n
		}
	}
}

// Intn returns a pseudo-random int in 0..n-1.
func (r *Rng) Intn(n int) int {
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Fork returns a new generator deterministically derived from this one's
// stream; useful for giving each PE an independent stream from one seed.
func (r *Rng) Fork(salt uint64) *Rng {
	return New(mix64(r.state ^ salt*0x9e3779b97f4a7c15))
}
