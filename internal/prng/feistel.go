package prng

// Permutation is a pseudorandom permutation π: 0..n-1 → 0..n-1 built by
// chaining four Feistel permutations over the square domain 0..⌈√n⌉²-1
// and transforming it down to 0..n-1 by cycle walking (Appendix B):
// values ≥ n are re-encrypted until they land below n. The state is a few
// words, so it can be replicated on all PEs.
type Permutation struct {
	n    uint64
	side uint64 // ⌈√n⌉; Feistel domain is side².
	keys [4]uint64
}

// NewPermutation creates the pseudorandom permutation on 0..n-1
// determined by the seed. n must be positive.
func NewPermutation(n uint64, seed uint64) *Permutation {
	if n == 0 {
		panic("prng: NewPermutation(0)")
	}
	side := isqrtCeil(n)
	p := &Permutation{n: n, side: side}
	r := New(seed)
	for i := range p.keys {
		p.keys[i] = r.Next()
	}
	return p
}

// N returns the domain size.
func (p *Permutation) N() uint64 { return p.n }

// feistel applies the four-round Feistel chain to a value in 0..side²-1.
// One round maps (a, b) to (b, (a + f(b)) mod side) where f is the keyed
// SplitMix64 finalizer — the shape π_f((a,b)) from Appendix B.
func (p *Permutation) feistel(x uint64) uint64 {
	a, b := x%p.side, x/p.side
	for _, k := range p.keys {
		a, b = b, (a+mix64(b^k))%p.side
	}
	return a + b*p.side
}

// Apply evaluates π(x) for x in 0..n-1.
func (p *Permutation) Apply(x uint64) uint64 {
	if x >= p.n {
		panic("prng: Permutation.Apply out of range")
	}
	// Cycle walking: since feistel is a bijection on 0..side²-1, iterating
	// from a start < n must eventually return below n (expected ≈1 step
	// because side² < 4n).
	y := p.feistel(x)
	for y >= p.n {
		y = p.feistel(y)
	}
	return y
}

// feistelInv inverts the four-round chain: each round
// (a,b) → (b, (a+f(b)) mod side) is undone by (a',b') → ((b'−f(a')) mod
// side, a'), applying the keys in reverse.
func (p *Permutation) feistelInv(y uint64) uint64 {
	a, b := y%p.side, y/p.side
	for i := len(p.keys) - 1; i >= 0; i-- {
		a, b = (b+p.side-mix64(a^p.keys[i])%p.side)%p.side, a
	}
	return a + b*p.side
}

// Invert evaluates π⁻¹(y) for y in 0..n-1 by cycle walking backwards.
func (p *Permutation) Invert(y uint64) uint64 {
	if y >= p.n {
		panic("prng: Permutation.Invert out of range")
	}
	x := p.feistelInv(y)
	for x >= p.n {
		x = p.feistelInv(x)
	}
	return x
}

// isqrtCeil returns ⌈√n⌉.
func isqrtCeil(n uint64) uint64 {
	if n <= 1 {
		return n
	}
	// Newton iteration on a conservative initial guess.
	x := uint64(1) << ((bits64Len(n-1) + 1) / 2) // x ≥ √n
	for {
		y := (x + n/x) / 2
		if y >= x {
			break
		}
		x = y
	}
	// x = ⌊√n⌋ now; round up.
	if x*x < n {
		x++
	}
	return x
}

// bits64Len returns the number of bits needed to represent v.
func bits64Len(v uint64) uint {
	var l uint
	for v != 0 {
		v >>= 1
		l++
	}
	return l
}
