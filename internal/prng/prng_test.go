package prng

import (
	"testing"
	"testing/quick"
)

func TestRngDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed produced different streams at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformish(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	for b, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Errorf("bucket %d has %d draws, expected ≈%d", b, c, draws/n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	base := New(1)
	f1, f2 := base.Fork(1), base.Fork(2)
	if f1.Next() == f2.Next() {
		t.Errorf("forks with different salts produced identical first draw")
	}
	// Same salt -> same stream.
	g1, g2 := New(1).Fork(7), New(1).Fork(7)
	for i := 0; i < 100; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("same fork salt diverged at %d", i)
		}
	}
}

func TestIsqrtCeil(t *testing.T) {
	cases := map[uint64]uint64{1: 1, 2: 2, 3: 2, 4: 2, 5: 3, 9: 3, 10: 4, 15: 4, 16: 4, 17: 5, 1 << 40: 1 << 20}
	for n, want := range cases {
		if got := isqrtCeil(n); got != want {
			t.Errorf("isqrtCeil(%d) = %d, want %d", n, got, want)
		}
	}
	if err := quick.Check(func(n uint32) bool {
		if n == 0 {
			return true
		}
		s := isqrtCeil(uint64(n))
		return s*s >= uint64(n) && (s-1)*(s-1) < uint64(n)
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestPermutationBijective exhaustively checks bijectivity for many
// domain sizes, including non-squares, 1, and primes.
func TestPermutationBijective(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 4, 5, 7, 16, 17, 100, 101, 255, 256, 257, 1000, 4096, 9973} {
		p := NewPermutation(n, 1234+n)
		seen := make([]bool, n)
		for x := uint64(0); x < n; x++ {
			y := p.Apply(x)
			if y >= n {
				t.Fatalf("n=%d: π(%d)=%d out of range", n, x, y)
			}
			if seen[y] {
				t.Fatalf("n=%d: value %d hit twice (not a bijection)", n, y)
			}
			seen[y] = true
		}
	}
}

func TestPermutationBijectiveQuick(t *testing.T) {
	if err := quick.Check(func(n uint16, seed uint64) bool {
		size := uint64(n%5000) + 1
		p := NewPermutation(size, seed)
		seen := make([]bool, size)
		for x := uint64(0); x < size; x++ {
			y := p.Apply(x)
			if y >= size || seen[y] {
				return false
			}
			seen[y] = true
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPermutationDeterministic(t *testing.T) {
	p1 := NewPermutation(1000, 5)
	p2 := NewPermutation(1000, 5)
	for x := uint64(0); x < 1000; x++ {
		if p1.Apply(x) != p2.Apply(x) {
			t.Fatalf("same seed, different permutation at %d", x)
		}
	}
}

// TestPermutationScrambles is a sanity check that the permutation is not
// close to the identity or a simple shift.
func TestPermutationScrambles(t *testing.T) {
	const n = 10000
	p := NewPermutation(n, 77)
	fixed := 0
	for x := uint64(0); x < n; x++ {
		if p.Apply(x) == x {
			fixed++
		}
	}
	// A random permutation has ≈1 fixed point; allow generous slack.
	if fixed > 20 {
		t.Errorf("%d fixed points in a %d-element permutation", fixed, n)
	}
}

func TestPermutationInvertRoundtrip(t *testing.T) {
	if err := quick.Check(func(n uint16, seed uint64) bool {
		size := uint64(n%3000) + 1
		p := NewPermutation(size, seed)
		for x := uint64(0); x < size; x++ {
			if p.Invert(p.Apply(x)) != x {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPermutationInvertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Invert out of range did not panic")
		}
	}()
	NewPermutation(10, 1).Invert(10)
}

func TestPermutationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Apply out of range did not panic")
		}
	}()
	NewPermutation(10, 1).Apply(10)
}
