package baseline

import (
	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/prng"
	"pmsort/internal/seq"
)

// HistogramSort implements the single-level histogram-based sorter in
// the style of Solomonik and Kale [34] (the paper's §3 "state of the art
// practical parallel sorting algorithm"): a hybrid between multiway
// mergesort and deterministic sample sort. Every PE sorts locally; then
// splitter candidates are refined through global histogram rounds until
// every splitter's global rank is within tol·n/p of its target; the data
// is exchanged directly and the received sorted runs are merged.
//
// tol is the rank tolerance as a fraction of n/p (their evaluation uses
// a few percent); tol ≤ 0 defaults to 0.05.
func HistogramSort[E any](c comm.Communicator, data []E, less func(a, b E) bool, tol float64, seed uint64) ([]E, *core.Stats) {
	registerWire[E]()
	cost := c.Cost()
	p := c.Size()
	stats := &core.Stats{MaxImbalance: 1, Levels: 1}
	start := coll.TimedBarrier(c)
	if tol <= 0 {
		tol = 0.05
	}

	// Local sort (their algorithm works on sorted local arrays so that
	// histograms are binary searches).
	seq.Sort(data, less)
	cost.SortOps(int64(len(data)))
	t0 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseLocalSort] += t0 - start
	if p == 1 {
		stats.TotalNS = t0 - start
		return data, stats
	}

	n := coll.Allreduce(c, int64(len(data)), 1, addI64)
	if n == 0 {
		stats.TotalNS = coll.TimedBarrier(c) - start
		return data, stats
	}
	slack := int64(tol * float64(n) / float64(p))
	if slack < 1 {
		slack = 1
	}

	// Iterative histogramming: maintain per-splitter candidate sets; a
	// histogram round ranks all pending candidates at once (one
	// vector-valued all-reduce), then keeps refining between the tightest
	// known bounds by probing local elements between them.
	type bound struct {
		pos  int   // local index bound
		rank int64 // its global rank
	}
	lo := make([]bound, p-1) // rank(lo) <= target
	hi := make([]bound, p-1) // rank(hi) >= target: local split in (lo.pos, hi.pos]
	targets := make([]int64, p-1)
	for j := range targets {
		targets[j] = int64(j+1) * n / int64(p)
		lo[j] = bound{pos: 0, rank: 0}
		hi[j] = bound{pos: len(data), rank: n}
	}
	splits := make([]int, p-1)
	resolved := make([]bool, p-1)
	rng := prng.New(seed).Fork(uint64(c.Rank()) * 31)

	addVec := func(a, b []int64) []int64 {
		out := make([]int64, len(a))
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return out
	}
	// pick proposes a probe: a pseudorandom local element between the
	// current bounds; -1 when this PE has nothing to offer.
	pick := func(j int) int {
		span := hi[j].pos - lo[j].pos
		if span <= 0 {
			return -1
		}
		return lo[j].pos + rng.Intn(span)
	}
	pickVec := func(a, b []probeSlot[E]) []probeSlot[E] {
		out := make([]probeSlot[E], len(a))
		for i := range a {
			if a[i].ok {
				out[i] = a[i]
			} else {
				out[i] = b[i]
			}
		}
		return out
	}

	remaining := p - 1
	for round := 0; remaining > 0 && round < 64; round++ {
		// Propose one candidate per unresolved splitter: a PE volunteers
		// its probe; the all-reduce picks one (ties by reduce order).
		cands := make([]probeSlot[E], p-1)
		for j := range cands {
			if resolved[j] {
				continue
			}
			if q := pick(j); q >= 0 {
				cands[j] = probeSlot[E]{val: data[q], ok: true}
			}
		}
		cands = coll.Allreduce(c, cands, int64(p-1), pickVec)

		// Histogram: global ranks of all candidates in one shot.
		counts := make([]int64, p-1)
		localPos := make([]int, p-1)
		for j := range counts {
			if resolved[j] || !cands[j].ok {
				continue
			}
			localPos[j] = seq.LowerBound(data, cands[j].val, less)
			counts[j] = int64(localPos[j])
			cost.Ops(int64(16))
		}
		ranks := coll.Allreduce(c, counts, int64(p-1), addVec)

		for j := range ranks {
			if resolved[j] {
				continue
			}
			if !cands[j].ok {
				// No candidates anywhere between the bounds: the range
				// of possible split points is empty of probes; settle on
				// the hi bound.
				splits[j] = hi[j].pos
				resolved[j] = true
				remaining--
				continue
			}
			d := ranks[j] - targets[j]
			switch {
			case d >= -slack && d <= slack:
				splits[j] = localPos[j]
				resolved[j] = true
				remaining--
			case ranks[j] < targets[j]:
				// Update criteria use only global ranks so every PE
				// tightens to the same candidate — the stored pos then
				// always belongs to one consistent splitter value.
				if ranks[j] > lo[j].rank {
					lo[j] = bound{pos: localPos[j], rank: ranks[j]}
				}
			default:
				if ranks[j] < hi[j].rank {
					hi[j] = bound{pos: localPos[j], rank: ranks[j]}
				}
			}
		}
	}
	// Any splitter still unresolved after the round cap falls back to its
	// tightest bound (keeps correctness; only balance degrades).
	for j := range resolved {
		if !resolved[j] {
			splits[j] = hi[j].pos
		}
	}
	// Splits must be monotone for slicing.
	for j := 1; j < len(splits); j++ {
		if splits[j] < splits[j-1] {
			splits[j] = splits[j-1]
		}
	}
	t1 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseSplitterSelection] += t1 - t0

	// Direct exchange of the p pieces.
	out := make([][]E, p)
	prev := 0
	for j := 0; j < p-1; j++ {
		out[j] = data[prev:splits[j]]
		prev = splits[j]
	}
	out[p-1] = data[prev:]
	in := coll.AlltoallvDirect(c, out)
	t2 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseDataDelivery] += t2 - t1

	// Merge the received sorted runs (the mergesort half of the hybrid).
	merged := seq.Multiway(in, less)
	cost.Ops(seq.MultiwayOps(int64(len(merged)), len(in)))
	t3 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseBucketProcessing] += t3 - t2
	stats.TotalNS = t3 - start
	return merged, stats
}

// probeSlot carries a histogram candidate through the pick-one reduce.
type probeSlot[E any] struct {
	val E
	ok  bool
}
