package baseline

import (
	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/prng"
	"pmsort/internal/seq"
)

const tagHCQ = 0x6e0002

// med is a (median, weight) gossip pair of HCQuicksort's pivot
// selection; ok=false means the PE abstained (empty local data).
type med[E any] struct {
	val E
	ok  bool
}

// HCQuicksort is hypercube parallel quicksort [19, 21] — the classic
// O(log² p)-startup algorithm that §6 positions AMS-sort as a
// generalization of (AMS with r=O(1) per level behaves like it, but with
// guaranteed balance). Every round, the PEs of the current subcube agree
// on a pivot (median of per-PE medians), split their local data, and
// exchange halves along one hypercube dimension; after log p rounds each
// PE sorts what it holds. The data is moved log p times and the output
// balance depends on pivot quality — both weaknesses the paper's
// algorithms remove. p must be a power of two.
func HCQuicksort[E any](c comm.Communicator, data []E, less func(a, b E) bool, seed uint64) ([]E, *core.Stats) {
	cost := c.Cost()
	p := c.Size()
	if p&(p-1) != 0 {
		panic("baseline: HCQuicksort requires a power-of-two number of PEs")
	}
	registerWire[E]()
	stats := &core.Stats{MaxImbalance: 1, Levels: 0}
	start := coll.TimedBarrier(c)

	// Local sort once up front so medians and splits are O(log) each.
	seq.Sort(data, less)
	cost.SortOps(int64(len(data)))
	t0 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseLocalSort] += t0 - start

	cur := data
	sub := c
	rng := prng.New(seed)
	for sub.Size() > 1 {
		stats.Levels++
		q := sub.Size()
		tSel0 := cost.Now()

		// Pivot: median of the members' local medians, via gossip of
		// (median, weight) pairs — cheap and classic. Empty PEs abstain.
		my := med[E]{}
		if len(cur) > 0 {
			my = med[E]{val: cur[len(cur)/2], ok: true}
		}
		meds := coll.Allgatherv(sub, []med[E]{my})
		var cands []E
		for _, m := range meds {
			if len(m) == 1 && m[0].ok {
				cands = append(cands, m[0].val)
			}
		}
		var pivot E
		havePivot := len(cands) > 0
		if havePivot {
			seq.Sort(cands, less)
			cost.SortOps(int64(len(cands)))
			pivot = cands[len(cands)/2]
		}
		_ = rng.Next() // keep the stream aligned across rounds
		stats.PhaseNS[core.PhaseSplitterSelection] += cost.Now() - tSel0

		// Split at the pivot and swap halves along the top dimension:
		// lower subcube keeps < pivot, upper keeps ≥ pivot.
		tEx0 := cost.Now()
		cut := 0
		if havePivot {
			cut = seq.LowerBound(cur, pivot, less)
			cost.Ops(16)
		}
		half := q / 2
		low := sub.Rank() < half
		partner := sub.Rank() + half
		if !low {
			partner = sub.Rank() - half
		}
		var keep, give []E
		if low {
			keep, give = cur[:cut], cur[cut:]
		} else {
			keep, give = cur[cut:], cur[:cut]
		}
		sub.Send(partner, tagHCQ, give, int64(len(give)))
		pl, _ := sub.Recv(partner, tagHCQ)
		got := pl.([]E)
		merged := seq.Merge2(keep, got, less)
		cost.Ops(int64(len(merged)))
		cur = merged
		stats.PhaseNS[core.PhaseDataDelivery] += cost.Now() - tEx0

		if low {
			sub = sub.Subset(0, half)
		} else {
			sub = sub.Subset(half, q)
		}
	}
	end := coll.TimedBarrier(c)
	stats.TotalNS = end - start
	n := coll.Allreduce(c, int64(len(cur)), 1, addI64)
	if n > 0 {
		stats.MaxImbalance = float64(len(cur)) * float64(p) / float64(n)
	}
	return cur, stats
}
