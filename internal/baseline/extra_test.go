package baseline

import (
	"math/rand"
	"testing"

	"pmsort/internal/core"
	"pmsort/internal/sim"
)

func TestHistogramSort(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, p := range []int{1, 2, 4, 8, 16, 24} {
		locals := randLocals(rng, p, 80, 1<<20)
		m := sim.NewDefault(p)
		outs := make([][]int, p)
		m.Run(func(pe *sim.PE) {
			outs[pe.Rank()], _ = HistogramSort(sim.World(pe), locals[pe.Rank()], intLess, 0.05, 3)
		})
		checkSorted(t, locals, outs)
	}
}

// TestHistogramSortBalance: with a 5% tolerance, the output imbalance
// must stay near 1 on unique-ish keys.
func TestHistogramSortBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	const p, perPE = 16, 200
	locals := randLocals(rng, p, perPE, 1<<30)
	m := sim.NewDefault(p)
	outs := make([][]int, p)
	m.Run(func(pe *sim.PE) {
		outs[pe.Rank()], _ = HistogramSort(sim.World(pe), locals[pe.Rank()], intLess, 0.05, 4)
	})
	checkSorted(t, locals, outs)
	for rank, o := range outs {
		if len(o) < perPE*8/10 || len(o) > perPE*12/10 {
			t.Errorf("PE %d holds %d elements (n/p=%d, tol 5%%)", rank, len(o), perPE)
		}
	}
}

// TestHistogramSortDuplicates: all-equal keys must still produce a valid
// (if unbalanced) sorted output rather than hang or crash.
func TestHistogramSortDuplicates(t *testing.T) {
	const p = 8
	locals := make([][]int, p)
	for i := range locals {
		loc := make([]int, 32)
		for j := range loc {
			loc[j] = 7
		}
		locals[i] = loc
	}
	m := sim.NewDefault(p)
	outs := make([][]int, p)
	m.Run(func(pe *sim.PE) {
		outs[pe.Rank()], _ = HistogramSort(sim.World(pe), locals[pe.Rank()], intLess, 0.05, 5)
	})
	checkSorted(t, locals, outs)
}

func TestHistogramSortEmpty(t *testing.T) {
	locals := [][]int{{}, {}, {}, {}}
	m := sim.NewDefault(4)
	outs := make([][]int, 4)
	m.Run(func(pe *sim.PE) {
		outs[pe.Rank()], _ = HistogramSort(sim.World(pe), locals[pe.Rank()], intLess, 0.05, 6)
	})
	checkSorted(t, locals, outs)
}

func TestHCQuicksort(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		locals := randLocals(rng, p, 64, 1<<20)
		m := sim.NewDefault(p)
		outs := make([][]int, p)
		m.Run(func(pe *sim.PE) {
			outs[pe.Rank()], _ = HCQuicksort(sim.World(pe), locals[pe.Rank()], intLess, 7)
		})
		checkSorted(t, locals, outs)
	}
}

func TestHCQuicksortRejectsNonPow2(t *testing.T) {
	m := sim.NewDefault(6)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p=6")
		}
	}()
	m.Run(func(pe *sim.PE) {
		HCQuicksort(sim.World(pe), []int{1}, intLess, 0)
	})
}

// TestHCQuicksortRounds: the recursion uses exactly log2(p) levels.
func TestHCQuicksortRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	const p = 16
	locals := randLocals(rng, p, 50, 1<<20)
	m := sim.NewDefault(p)
	m.Run(func(pe *sim.PE) {
		_, st := HCQuicksort(sim.World(pe), locals[pe.Rank()], intLess, 8)
		if st.Levels != 4 {
			t.Errorf("levels = %d, want 4", st.Levels)
		}
	})
}

// TestQuicksortImbalanceVsAMS: pivot-based splitting cannot guarantee the
// near-perfect balance AMS-sort achieves with overpartitioning.
func TestQuicksortImbalanceVsAMS(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	const p, perPE = 32, 400
	locals := randLocals(rng, p, perPE, 1<<30)
	var hcImb, amsImb float64
	m := sim.NewDefault(p)
	m.Run(func(pe *sim.PE) {
		_, st := HCQuicksort(sim.World(pe), append([]int(nil), locals[pe.Rank()]...), intLess, 9)
		if pe.Rank() == 0 {
			hcImb = st.MaxImbalance
		}
	})
	m2 := sim.NewDefault(p)
	outs := make([][]int, p)
	m2.Run(func(pe *sim.PE) {
		out, _ := core.AMSSort(sim.World(pe), append([]int(nil), locals[pe.Rank()]...), intLess,
			core.Config{Levels: 2, Seed: 9, Overpartition: 16})
		outs[pe.Rank()] = out
	})
	for _, o := range outs {
		if imb := float64(len(o)) * float64(p) / float64(p*perPE); imb > amsImb {
			amsImb = imb
		}
	}
	if hcImb < 1 || amsImb < 1 {
		t.Fatalf("impossible imbalances hc=%f ams=%f", hcImb, amsImb)
	}
	if amsImb > 1.5 {
		t.Errorf("AMS imbalance %f too large", amsImb)
	}
	// Median-of-medians pivots typically land 1.2-2.5x; just require AMS
	// to be no worse.
	if amsImb > hcImb+0.25 {
		t.Errorf("AMS (%f) clearly worse balanced than quicksort (%f)?", amsImb, hcImb)
	}
}
