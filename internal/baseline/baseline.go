// Package baseline implements the comparison algorithms the paper
// positions itself against (§1, §3, §7.3):
//
//   - GVSampleSort: classic single-level sample sort with centralized
//     splitter generation (Gerbessiotis/Valiant [13], TritonSort/
//     Baidu-Sort style): the sample is gathered and sorted on one PE —
//     a sequential bottleneck — and the data exchange sends p-1 direct
//     messages per PE.
//   - MPSort: MP-sort [12] style single-level multiway mergesort that
//     "implements local multiway merging by sorting from scratch", with
//     direct delivery.
//   - BitonicSort: Batcher's bitonic sort over the PEs — the classic
//     log²p-round algorithm that moves all data Θ(log² p) times; the
//     "prohibitive communication volume" extreme of §1.
package baseline

import (
	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/msel"
	"pmsort/internal/prng"
	"pmsort/internal/seq"
	"pmsort/internal/wire"
)

// registerWire registers every payload type the baselines can put on a
// serializing backend for element type E. Idempotent; every baseline
// entry point calls it before its first message.
func registerWire[E any]() {
	coll.RegisterWire[E]()
	coll.RegisterWire[med[E]]() // hc-quicksort gossips (median, weight) pairs
	wire.Register[probeSlot[E]]()
	wire.Register[[]probeSlot[E]]()
	msel.RegisterWire[E]()
}

// GVSampleSort sorts with single-level sample sort and centralized
// splitter selection. Oversampling a defaults to 16·log₂(p)+1 samples
// per PE. The output imbalance is whatever the splitters give — there is
// no overpartitioning rescue.
func GVSampleSort[E any](c comm.Communicator, data []E, less func(a, b E) bool, seed uint64) ([]E, *core.Stats) {
	registerWire[E]()
	cost := c.Cost()
	p := c.Size()
	stats := &core.Stats{MaxImbalance: 1, Levels: 1}
	start := coll.TimedBarrier(c)
	if p == 1 {
		seq.Sort(data, less)
		cost.SortOps(int64(len(data)))
		stats.PhaseNS[core.PhaseLocalSort] += cost.Now() - start
		stats.TotalNS = coll.TimedBarrier(c) - start
		return data, stats
	}

	// Splitter selection: local samples gathered and sorted at PE 0.
	t0 := start
	logp := 0
	for v := 1; v < p; v <<= 1 {
		logp++
	}
	a := 16*logp + 1
	if a > len(data) {
		a = len(data)
	}
	rng := prng.New(seed).Fork(uint64(c.Rank()))
	sample := make([]E, a)
	for i := range sample {
		sample[i] = data[rng.Intn(len(data))]
	}
	gathered := coll.Gatherv(c, 0, sample)
	var splitters []E
	if gathered != nil {
		all := flatten(gathered)
		seq.Sort(all, less)
		cost.SortOps(int64(len(all))) // the sequential bottleneck
		splitters = make([]E, 0, p-1)
		for j := 1; j < p; j++ {
			splitters = append(splitters, all[j*len(all)/p])
		}
	}
	splitters = coll.Bcast(c, 0, splitters, int64(p-1))
	t1 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseSplitterSelection] += t1 - t0

	// Bucket processing: partition into p buckets.
	var parted []E
	var bounds []int
	if len(splitters) > 0 {
		cls := seq.NewClassifier(splitters, less)
		parted, bounds = seq.Partition(data, p, cls.Bucket)
		cost.PartitionOps(seq.ClassifyOps(int64(len(data)), cls.Levels()))
		cost.Scan(2 * int64(len(data)))
	} else {
		parted, bounds = data, make([]int, p+1)
		for i := 1; i <= p; i++ {
			bounds[i] = len(data)
		}
	}
	t2 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseBucketProcessing] += t2 - t1

	// Data delivery: direct all-to-allv, piece i to PE i.
	out := make([][]E, p)
	for i := 0; i < p; i++ {
		out[i] = parted[bounds[i]:bounds[i+1]]
	}
	in := coll.AlltoallvDirect(c, out)
	var n int
	for _, chunk := range in {
		n += len(chunk)
	}
	recv := make([]E, 0, n)
	for _, chunk := range in {
		recv = append(recv, chunk...)
	}
	cost.Scan(int64(n))
	t3 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseDataDelivery] += t3 - t2

	// Local sort of the received buckets.
	seq.Sort(recv, less)
	cost.SortOps(int64(len(recv)))
	t4 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseLocalSort] += t4 - t3
	stats.TotalNS = t4 - start
	return recv, stats
}

// MPSort sorts MP-sort style [12]: single-level multiway mergesort with
// exact splitting (multisequence selection after a local sort), direct
// message delivery, and a final local sort from scratch instead of a
// merge of the received runs — the design §7.3 shows does not scale for
// small inputs.
func MPSort[E any](c comm.Communicator, data []E, less func(a, b E) bool, seed uint64) ([]E, *core.Stats) {
	registerWire[E]()
	cost := c.Cost()
	p := c.Size()
	stats := &core.Stats{MaxImbalance: 1, Levels: 1}
	start := coll.TimedBarrier(c)

	// Initial local sort.
	seq.Sort(data, less)
	cost.SortOps(int64(len(data)))
	t0 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseLocalSort] += t0 - start
	if p == 1 {
		stats.TotalNS = t0 - start
		return data, stats
	}

	// Exact splitters for all p parts at once.
	n := coll.Allreduce(c, int64(len(data)), 1, func(a, b int64) int64 { return a + b })
	targets := make([]int64, p-1)
	for j := 1; j < p; j++ {
		targets[j-1] = int64(j) * n / int64(p)
	}
	pos := msel.Select(c, data, targets, less, seed)
	t1 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseSplitterSelection] += t1 - t0

	// Direct delivery of the p pieces.
	out := make([][]E, p)
	prev := 0
	for j := 0; j < p-1; j++ {
		out[j] = data[prev:pos[j]]
		prev = pos[j]
	}
	out[p-1] = data[prev:]
	in := coll.AlltoallvDirect(c, out)
	t2 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseDataDelivery] += t2 - t1

	// "Local multiway merging by sorting from scratch."
	var total int
	for _, chunk := range in {
		total += len(chunk)
	}
	recv := make([]E, 0, total)
	for _, chunk := range in {
		recv = append(recv, chunk...)
	}
	seq.Sort(recv, less)
	cost.SortOps(int64(len(recv)))
	t3 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseBucketProcessing] += t3 - t2
	stats.TotalNS = t3 - start
	return recv, stats
}

// BitonicSort sorts with Batcher's bitonic network over the PEs: every
// PE sorts locally, then log²(p) compare-split rounds exchange whole
// sequences with hypercube partners. p must be a power of two. Per-PE
// element counts are preserved exactly.
func BitonicSort[E any](c comm.Communicator, data []E, less func(a, b E) bool, _ uint64) ([]E, *core.Stats) {
	const tagBitonic = 0x6e0001
	registerWire[E]()
	cost := c.Cost()
	p := c.Size()
	if p&(p-1) != 0 {
		panic("baseline: BitonicSort requires a power-of-two number of PEs")
	}
	stats := &core.Stats{MaxImbalance: 1, Levels: 1}
	start := coll.TimedBarrier(c)

	seq.Sort(data, less)
	cost.SortOps(int64(len(data)))
	t0 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseLocalSort] += t0 - start

	rank := c.Rank()
	cur := data
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			partner := rank ^ j
			keepLow := (rank&j == 0) == (rank&k == 0)
			c.Send(partner, tagBitonic, cur, int64(len(cur)))
			pl, _ := c.Recv(partner, tagBitonic)
			other := pl.([]E)
			// Both partners must compute the IDENTICAL merged sequence or
			// the low/high split is not a partition of their union: Merge2
			// is left-biased on ties, so always feed the lower rank's data
			// first. Merging own-data-first duplicates one element of every
			// tied cross-partner pair and drops another — invisible with
			// scalar keys (tied values are interchangeable), caught by the
			// torture harness's tie-heavy struct elements.
			var merged []E
			if rank < partner {
				merged = seq.Merge2(cur, other, less)
			} else {
				merged = seq.Merge2(other, cur, less)
			}
			cost.Ops(int64(len(merged)))
			// Preserve my element count: low keeps the smallest len(cur),
			// high keeps the largest len(cur).
			if keepLow {
				cur = merged[:len(cur):len(cur)]
			} else {
				cur = merged[len(merged)-len(cur):]
			}
		}
	}
	t1 := coll.TimedBarrier(c)
	stats.PhaseNS[core.PhaseDataDelivery] += t1 - t0
	stats.TotalNS = t1 - start
	return cur, stats
}

func addI64(a, b int64) int64 { return a + b }

func flatten[T any](lists [][]T) []T {
	var out []T
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}
