package baseline

import (
	"math/rand"
	"sort"
	"testing"

	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/sim"
)

func intLess(a, b int) bool { return a < b }

type sorterFn func(c comm.Communicator, data []int, less func(a, b int) bool, seed uint64) ([]int, *core.Stats)

func runBaseline(p int, locals [][]int, fn sorterFn) [][]int {
	m := sim.NewDefault(p)
	outs := make([][]int, p)
	m.Run(func(pe *sim.PE) {
		outs[pe.Rank()], _ = fn(sim.World(pe), locals[pe.Rank()], intLess, 77)
	})
	return outs
}

func checkSorted(t *testing.T, locals, outs [][]int) {
	t.Helper()
	var wantAll, gotAll []int
	for _, l := range locals {
		wantAll = append(wantAll, l...)
	}
	prevMax, first := 0, true
	for rank, out := range outs {
		if !sort.IntsAreSorted(out) {
			t.Fatalf("PE %d output not locally sorted", rank)
		}
		if len(out) > 0 {
			if !first && out[0] < prevMax {
				t.Fatalf("PE %d starts below previous PE's max", rank)
			}
			prevMax = out[len(out)-1]
			first = false
		}
		gotAll = append(gotAll, out...)
	}
	sort.Ints(wantAll)
	sort.Ints(gotAll)
	if len(wantAll) != len(gotAll) {
		t.Fatalf("element count changed: %d -> %d", len(wantAll), len(gotAll))
	}
	for i := range wantAll {
		if wantAll[i] != gotAll[i] {
			t.Fatalf("not a permutation at %d", i)
		}
	}
}

func randLocals(rng *rand.Rand, p, perPE, keyRange int) [][]int {
	locals := make([][]int, p)
	for i := range locals {
		loc := make([]int, perPE)
		for j := range loc {
			loc[j] = rng.Intn(keyRange)
		}
		locals[i] = loc
	}
	return locals
}

func TestGVSampleSort(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, p := range []int{1, 2, 4, 8, 16, 24} {
		locals := randLocals(rng, p, 60, 1<<20)
		outs := runBaseline(p, locals, GVSampleSort[int])
		checkSorted(t, locals, outs)
	}
}

func TestMPSort(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, p := range []int{1, 2, 4, 8, 16, 24} {
		locals := randLocals(rng, p, 60, 1<<20)
		outs := runBaseline(p, locals, MPSort[int])
		checkSorted(t, locals, outs)
	}
}

// TestMPSortPerfectBalance: MP-sort splits exactly, so output is balanced.
func TestMPSortPerfectBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := 8
	locals := randLocals(rng, p, 40, 5) // heavy duplicates
	outs := runBaseline(p, locals, MPSort[int])
	checkSorted(t, locals, outs)
	for rank, o := range outs {
		if len(o) != 40 {
			t.Errorf("PE %d holds %d elements, want 40", rank, len(o))
		}
	}
}

func TestBitonicSort(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		locals := randLocals(rng, p, 32, 1<<20)
		outs := runBaseline(p, locals, BitonicSort[int])
		checkSorted(t, locals, outs)
		for rank, o := range outs {
			if len(o) != 32 {
				t.Errorf("p=%d: PE %d count changed to %d", p, rank, len(o))
			}
		}
	}
}

func TestBitonicRejectsNonPowerOfTwo(t *testing.T) {
	m := sim.NewDefault(6)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p=6")
		}
	}()
	m.Run(func(pe *sim.PE) {
		BitonicSort(sim.World(pe), []int{1}, intLess, 0)
	})
}

// TestBitonicMovesDataLogSquaredTimes: the communication volume per PE is
// Θ(log²p)·n/p — the §1 "prohibitive communication volume" extreme —
// whereas single-level sample sort moves each element once.
func TestBitonicMovesDataLogSquaredTimes(t *testing.T) {
	const p, perPE = 16, 64
	rng := rand.New(rand.NewSource(75))
	locals := randLocals(rng, p, perPE, 1<<20)
	m := sim.NewDefault(p)
	m.Run(func(pe *sim.PE) {
		pe.ResetCounters()
		BitonicSort(sim.World(pe), locals[pe.Rank()], intLess, 0)
	})
	// log2(16)=4 -> 4·5/2 = 10 compare-split rounds, each sends perPE.
	wantWords := int64(10 * perPE)
	for i := 0; i < p; i++ {
		got := m.PE(i).WordsSent
		if got < wantWords || got > wantWords+64 {
			t.Errorf("PE %d sent %d words, want ≈%d (log²p rounds)", i, got, wantWords)
		}
	}
}

// TestGVCentralizedBottleneck: GV sample sort's splitter phase includes a
// sequential sort of the whole gathered sample on PE 0; AMS-sort's
// splitter phase must be much cheaper at scale.
func TestGVCentralizedBottleneck(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	const p, perPE = 64, 100
	locals := randLocals(rng, p, perPE, 1<<30)
	var gvSplit, amsSplit int64
	m := sim.NewDefault(p)
	m.Run(func(pe *sim.PE) {
		_, st := GVSampleSort(sim.World(pe), append([]int(nil), locals[pe.Rank()]...), intLess, 7)
		if pe.Rank() == 0 {
			gvSplit = st.PhaseNS[core.PhaseSplitterSelection]
		}
	})
	m2 := sim.NewDefault(p)
	m2.Run(func(pe *sim.PE) {
		_, st := core.AMSSort(sim.World(pe), append([]int(nil), locals[pe.Rank()]...), intLess, core.Config{Levels: 1, Seed: 7})
		if pe.Rank() == 0 {
			amsSplit = st.PhaseNS[core.PhaseSplitterSelection]
		}
	})
	if amsSplit >= gvSplit {
		t.Errorf("AMS splitter selection (%d ns) not faster than centralized GV (%d ns)", amsSplit, gvSplit)
	}
}
