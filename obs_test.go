package pmsort

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"pmsort/internal/obs"
)

func obsTestLocals(p, perPE int) [][]uint64 {
	locals := make([][]uint64, p)
	for rank := range locals {
		rng := rand.New(rand.NewSource(int64(rank) + 99))
		locals[rank] = make([]uint64, perPE)
		for i := range locals[rank] {
			locals[rank][i] = rng.Uint64()
		}
	}
	return locals
}

// parseChrome unmarshals a Chrome trace buffer and returns the set of
// pids carrying "X" span events.
func parseChrome(t *testing.T, buf []byte) map[int32]int {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int32  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("Chrome trace JSON does not parse: %v", err)
	}
	pids := map[int32]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid]++
		}
	}
	return pids
}

// TestObsNativeGatherTrace runs a traced sort on the native backend
// through the public API and checks the merged trace end to end.
func TestObsNativeGatherTrace(t *testing.T) {
	const p = 4
	cl := NewNative(p)
	cl.EnableObs()
	locals := obsTestLocals(p, 3000)
	var trace *ObsTrace
	cl.Run(func(c Communicator) {
		_, _ = AMSSort(c, locals[c.Rank()], u64Less, Config{Levels: 1, Seed: 5, Key: u64Key})
		if tr := GatherTrace(c); tr != nil {
			trace = tr
		}
	})
	if trace == nil {
		t.Fatal("GatherTrace returned nil on rank 0")
	}
	if err := trace.Validate(); err != nil {
		t.Fatalf("merged native trace invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	pids := parseChrome(t, buf.Bytes())
	if len(pids) != p {
		t.Fatalf("trace spans cover %d ranks, want %d", len(pids), p)
	}
	var report bytes.Buffer
	if err := trace.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	if report.Len() == 0 {
		t.Fatal("empty report")
	}
}

// TestObsSimMultiLevel checks the simulated backend's virtual-time
// trace on a two-level sort: level spans for both levels, and the
// satellite Stats breakdown — per-level phase columns summing exactly
// to the per-phase totals.
func TestObsSimMultiLevel(t *testing.T) {
	const p, perPE = 64, 200
	cl := New(p)
	cl.EnableObs()
	locals := obsTestLocals(p, perPE)
	allStats := make([]*Stats, p)
	var trace *ObsTrace
	cl.Run(func(pe *PE) {
		c := World(pe)
		_, st := AMSSort(c, locals[pe.Rank()], u64Less, Config{Levels: 2, Seed: 5, Key: u64Key})
		allStats[pe.Rank()] = st
		if tr := GatherTrace(c); tr != nil {
			trace = tr
		}
	})

	for rank, st := range allStats {
		if len(st.LevelPhaseNS) < 2 {
			t.Fatalf("rank %d: %d levels in LevelPhaseNS, want >= 2", rank, len(st.LevelPhaseNS))
		}
		for ph := Phase(0); ph < NumPhases; ph++ {
			var sum int64
			for _, row := range st.LevelPhaseNS {
				sum += row[ph]
			}
			if sum != st.PhaseNS[ph] {
				t.Errorf("rank %d phase %v: level columns sum to %d, PhaseNS %d",
					rank, ph, sum, st.PhaseNS[ph])
			}
		}
	}

	if trace == nil {
		t.Fatal("GatherTrace returned nil on rank 0")
	}
	if err := trace.Validate(); err != nil {
		t.Fatalf("merged sim trace invalid: %v", err)
	}
	levels := map[int32]int{}
	for _, snap := range trace.Snaps {
		for _, sp := range snap.Spans {
			if sp.Name == obs.SpanLevel {
				levels[sp.Level]++
			}
		}
	}
	if levels[0] != p || levels[1] != p {
		t.Fatalf("level spans per level: %v, want %d each for levels 0 and 1", levels, p)
	}
}

// TestObsGatherDisabled: gathering from an untracked cluster still
// produces a valid (empty) merged trace covering every rank.
func TestObsGatherDisabled(t *testing.T) {
	const p = 2
	cl := NewNative(p)
	locals := obsTestLocals(p, 100)
	var trace *ObsTrace
	cl.Run(func(c Communicator) {
		_, _ = AMSSort(c, locals[c.Rank()], u64Less, Config{Levels: 1, Seed: 5})
		if tr := GatherTrace(c); tr != nil {
			trace = tr
		}
	})
	if trace == nil {
		t.Fatal("GatherTrace returned nil on rank 0")
	}
	if err := trace.Validate(); err != nil {
		t.Fatalf("disabled-tracing gather invalid: %v", err)
	}
	if len(trace.Snaps) != p {
		t.Fatalf("%d snapshots, want %d", len(trace.Snaps), p)
	}
	for _, snap := range trace.Snaps {
		if len(snap.Spans) != 0 {
			t.Errorf("rank %d: %d spans with tracing off", snap.Rank, len(snap.Spans))
		}
	}
}

// TestObsRLMLevelPhase: RLM charges its initial sort to level 0 and its
// level columns also sum exactly to the phase totals.
func TestObsRLMLevelPhase(t *testing.T) {
	const p = 8
	cl := NewNative(p)
	locals := obsTestLocals(p, 2000)
	allStats := make([]*Stats, p)
	cl.Run(func(c Communicator) {
		_, st := RLMSort(c, locals[c.Rank()], u64Less, Config{Levels: 1, Seed: 5, Key: u64Key})
		allStats[c.Rank()] = st
	})
	for rank, st := range allStats {
		if len(st.LevelPhaseNS) == 0 {
			t.Fatalf("rank %d: empty LevelPhaseNS", rank)
		}
		if st.LevelPhaseNS[0][PhaseLocalSort] == 0 {
			t.Errorf("rank %d: initial sort not charged to level 0", rank)
		}
		for ph := Phase(0); ph < NumPhases; ph++ {
			var sum int64
			for _, row := range st.LevelPhaseNS {
				sum += row[ph]
			}
			if sum != st.PhaseNS[ph] {
				t.Errorf("rank %d phase %v: level columns sum to %d, PhaseNS %d",
					rank, ph, sum, st.PhaseNS[ph])
			}
		}
	}
}
