// Benchmarks: one per table/figure of the paper's evaluation (DESIGN.md
// §3), at benchmark-friendly scale (p ≤ 256). Every benchmark reports
// the *simulated* time as the custom metric "simms/op" next to the real
// host time; the full-scale tables are produced by cmd/sortbench.
//
// The BenchmarkNative* group is different: it runs the native
// shared-memory backend, so ns/op there is real sorting speed — the
// wall-clock trajectory future PRs improve against the
// BenchmarkNativeSortSlice one-core reference.
package pmsort

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"pmsort/internal/core"
	"pmsort/internal/delivery"
	"pmsort/internal/expt"
	"pmsort/internal/seq"
	"pmsort/internal/wire"
	"pmsort/internal/workload"
)

// u64Key is the identity order key of the uint64 benchmarks: it turns
// on the radix kernel fast path (Config.Key).
func u64Key(x uint64) uint64 { return x }

// benchRun executes one validated sorting run per iteration and reports
// the simulated time.
func benchRun(b *testing.B, spec expt.Spec) {
	b.Helper()
	var sim int64
	for i := 0; i < b.N; i++ {
		s := spec
		s.Seed = spec.Seed + uint64(i)
		res := expt.Run(s)
		sim = res.TotalNS
	}
	b.ReportMetric(float64(sim)/1e6, "simms/op")
}

// BenchmarkTable1 regenerates the level plans (Table 1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range []int{512, 2048, 8192, 32768} {
			for k := 1; k <= 3; k++ {
				core.PlanLevels(p, k)
			}
		}
	}
}

// BenchmarkTable2 is the weak-scaling grid of Table 2 (AMS-sort, the
// level count that Table 2 would select is benchmarked explicitly).
func BenchmarkTable2(b *testing.B) {
	for _, p := range []int{64, 256} {
		for _, perPE := range []int{1_000, 10_000} {
			for _, k := range []int{1, 2, 3} {
				b.Run(fmt.Sprintf("p=%d/np=%d/k=%d", p, perPE, k), func(b *testing.B) {
					benchRun(b, expt.Spec{Algo: expt.AMS, P: p, PerPE: perPE, Levels: k, Seed: 1})
				})
			}
		}
	}
}

// BenchmarkFig7 measures the RLM-sort side of the slowdown plot.
func BenchmarkFig7(b *testing.B) {
	for _, p := range []int{64, 256} {
		for _, k := range []int{1, 2} {
			b.Run(fmt.Sprintf("RLM/p=%d/k=%d", p, k), func(b *testing.B) {
				benchRun(b, expt.Spec{Algo: expt.RLM, P: p, PerPE: 1_000, Levels: k, Seed: 2})
			})
		}
	}
}

// BenchmarkFig8 exercises the phase-breakdown configuration (3-level
// AMS at the largest benchmark machine).
func BenchmarkFig8(b *testing.B) {
	benchRun(b, expt.Spec{Algo: expt.AMS, P: 256, PerPE: 10_000, Levels: 3, Seed: 3})
}

// BenchmarkFig10 exercises the overpartitioning imbalance sweep point
// (b=16, a·b=256).
func BenchmarkFig10(b *testing.B) {
	benchRun(b, expt.Spec{Algo: expt.AMS, P: 64, PerPE: 10_000, Levels: 1, Seed: 4,
		Oversampling: 16, Overpartition: 16})
}

// BenchmarkFig11 exercises the oversampling sweep point (a=1, b=64 — the
// configuration Appendix E found fastest).
func BenchmarkFig11(b *testing.B) {
	benchRun(b, expt.Spec{Algo: expt.AMS, P: 64, PerPE: 10_000, Levels: 1, Seed: 5,
		Oversampling: 1, Overpartition: 64})
}

// BenchmarkFig12 is one repetition of the distribution measurement.
func BenchmarkFig12(b *testing.B) {
	benchRun(b, expt.Spec{Algo: expt.AMS, P: 256, PerPE: 1_000, Levels: 2, Seed: 6})
}

// BenchmarkCompare covers the §7.3 baselines.
func BenchmarkCompare(b *testing.B) {
	specs := map[string]expt.Spec{
		"AMS-2level": {Algo: expt.AMS, P: 128, PerPE: 1_000, Levels: 2},
		"MP-sort":    {Algo: expt.MP, P: 128, PerPE: 1_000, Levels: 1},
		"GV-sample":  {Algo: expt.GV, P: 128, PerPE: 1_000, Levels: 1},
		"bitonic":    {Algo: expt.Bitonic, P: 128, PerPE: 1_000, Levels: 1},
		"histogram":  {Algo: expt.Hist, P: 128, PerPE: 1_000, Levels: 1},
		"quicksort":  {Algo: expt.HCQ, P: 128, PerPE: 1_000, Levels: 1},
	}
	for name, spec := range specs {
		spec.Seed = 7
		b.Run(name, func(b *testing.B) { benchRun(b, spec) })
	}
}

// BenchmarkDelivery covers the §4.3 delivery-strategy ablation.
func BenchmarkDelivery(b *testing.B) {
	for _, strat := range []delivery.Strategy{delivery.Simple, delivery.Randomized,
		delivery.RandomizedAdvanced, delivery.Deterministic} {
		b.Run(strat.String(), func(b *testing.B) {
			benchRun(b, expt.Spec{Algo: expt.AMS, P: 128, PerPE: 1_000, Levels: 2, Seed: 8,
				Delivery: delivery.Options{Strategy: strat}})
		})
	}
}

// BenchmarkAlltoall covers the 1-factor vs direct exchange ablation (§7.1).
func BenchmarkAlltoall(b *testing.B) {
	for name, exch := range map[string]delivery.Exchange{"1factor": delivery.OneFactor, "direct": delivery.Direct} {
		b.Run(name, func(b *testing.B) {
			benchRun(b, expt.Spec{Algo: expt.AMS, P: 128, PerPE: 1_000, Levels: 1, Seed: 9,
				Delivery: delivery.Options{Exchange: exch}})
		})
	}
}

// benchNativeN is the fixed total input size of the native strong-
// scaling benchmarks (1M words = 8 MB).
const benchNativeN = 1 << 20

// nativeLocals cuts one deterministic input of benchNativeN elements
// into p per-PE slices.
func nativeLocals(p int, seed uint64) [][]uint64 {
	perPE := benchNativeN / p
	locals := make([][]uint64, p)
	for rank := 0; rank < p; rank++ {
		locals[rank] = workload.Local(workload.Uniform, seed, p, perPE, rank)
	}
	return locals
}

// BenchmarkNativeSortSlice is the one-core sequential reference: a
// single sort.Slice over the whole benchNativeN-element input.
func BenchmarkNativeSortSlice(b *testing.B) {
	b.SetBytes(benchNativeN * 8)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		data := workload.Local(workload.Uniform, uint64(i), 1, benchNativeN, 0)
		b.StartTimer()
		sort.Slice(data, func(x, y int) bool { return data[x] < data[y] })
	}
}

// BenchmarkNativeSortKeyed is the one-core keyed-kernel reference: a
// single LSD radix sort (seq.SortKeyed, the Config.Key fast path) over
// the whole benchNativeN-element input. The honest denominator for the
// keyed parallel numbers, next to the sort.Slice trajectory baseline.
func BenchmarkNativeSortKeyed(b *testing.B) {
	b.SetBytes(benchNativeN * 8)
	var scratch []uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		data := workload.Local(workload.Uniform, uint64(i), 1, benchNativeN, 0)
		b.StartTimer()
		scratch = seq.SortKeyed(data, u64Key, scratch)
	}
}

// BenchmarkNativeAMS sorts the same fixed input with AMS-sort on the
// native backend at several p (strong scaling), with the ordered-key
// radix kernel (Config.Key) — the configuration the README's speedup
// table records. On a multicore host the ns/op ratio against
// BenchmarkNativeSortSlice is the real speedup; past p = GOMAXPROCS
// the goroutine-PEs time-share cores.
func BenchmarkNativeAMS(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.SetBytes(benchNativeN * 8)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				locals := nativeLocals(p, uint64(i))
				cl := NewNative(p)
				b.StartTimer()
				cl.Run(func(c Communicator) {
					_, _ = AMSSort(c, locals[c.Rank()], u64Less, Config{Levels: 1, Seed: 42, Key: u64Key})
				})
			}
		})
	}
}

// BenchmarkNativeAMSCmp is BenchmarkNativeAMS on the plain comparator
// kernels (stable sort pieces + loser-tree merge, no Config.Key, prefix
// cache off) — the floor every element type without an order key used
// to be stuck at.
func BenchmarkNativeAMSCmp(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.SetBytes(benchNativeN * 8)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				locals := nativeLocals(p, uint64(i))
				cl := NewNative(p)
				b.StartTimer()
				cl.Run(func(c Communicator) {
					_, _ = AMSSort(c, locals[c.Rank()], u64Less, Config{Levels: 1, Seed: 42, NoPrefix: true})
				})
			}
		})
	}
}

// BenchmarkNativeAMSCmpPrefix is BenchmarkNativeAMSCmp with the prefix
// cache on (the default): the derived uint64 prefix routes local sort,
// classification, and merging through the cached kernels, with the
// comparator only on equal-prefix ties. Output is byte-identical to
// BenchmarkNativeAMSCmp; the gap against BenchmarkNativeAMS is what the
// comparator path still pays.
func BenchmarkNativeAMSCmpPrefix(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.SetBytes(benchNativeN * 8)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				locals := nativeLocals(p, uint64(i))
				cl := NewNative(p)
				b.StartTimer()
				cl.Run(func(c Communicator) {
					_, _ = AMSSort(c, locals[c.Rank()], u64Less, Config{Levels: 1, Seed: 42})
				})
			}
		})
	}
}

// benchRec is the struct-element benchmark payload: padding-free
// (16 bytes), ordered by K, with a V payload that rides along through
// every kernel. The wire codec bulk-copies it; the comparator path is
// the only sorting option (no uint64 order key is configured).
type benchRec struct {
	K uint64
	V uint64
}

func benchRecLess(a, b benchRec) bool { return a.K < b.K }

// benchStructN is the total struct-element count (1<<19 × 16 B = 8 MB,
// matching the uint64 benchmarks' footprint).
const benchStructN = 1 << 19

func structLocals(p int, seed uint64) [][]benchRec {
	perPE := benchStructN / p
	locals := make([][]benchRec, p)
	for rank := 0; rank < p; rank++ {
		keys := workload.Local(workload.Uniform, seed, p, perPE, rank)
		loc := make([]benchRec, perPE)
		for i, k := range keys {
			loc[i] = benchRec{K: k, V: uint64(rank)<<32 | uint64(i)}
		}
		locals[rank] = loc
	}
	return locals
}

// BenchmarkNativeAMSStruct sorts the struct-key workload on the native
// backend: cmp is the plain comparator path, prefix adds Config.Prefix
// extracting K — the measured gap is what the prefix cache buys real
// struct elements (where no radix fast path exists).
func BenchmarkNativeAMSStruct(b *testing.B) {
	const p = 4
	variants := []struct {
		name string
		cfg  Config
	}{
		{"cmp", Config{Levels: 1, Seed: 42, NoPrefix: true}},
		{"prefix", Config{Levels: 1, Seed: 42, Prefix: func(e benchRec) uint64 { return e.K }}},
	}
	for _, v := range variants {
		b.Run(fmt.Sprintf("%s-p%d", v.name, p), func(b *testing.B) {
			b.SetBytes(benchStructN * 16)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				locals := structLocals(p, uint64(i))
				cl := NewNative(p)
				b.StartTimer()
				cl.Run(func(c Communicator) {
					_, _ = AMSSort(c, locals[c.Rank()], benchRecLess, v.cfg)
				})
			}
		})
	}
}

// BenchmarkNativeRLM is the RLM-sort counterpart of BenchmarkNativeAMS
// (perfectly balanced output, merge-based bucket processing).
func BenchmarkNativeRLM(b *testing.B) {
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.SetBytes(benchNativeN * 8)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				locals := nativeLocals(p, uint64(i))
				cl := NewNative(p)
				b.StartTimer()
				cl.Run(func(c Communicator) {
					_, _ = RLMSort(c, locals[c.Rank()], u64Less, Config{Levels: 1, Seed: 42, Key: u64Key})
				})
			}
		})
	}
}

// BenchmarkWorkloads measures robustness across input distributions.
func BenchmarkWorkloads(b *testing.B) {
	for _, kind := range []workload.Kind{workload.Uniform, workload.Skewed, workload.DupHeavy, workload.Sorted} {
		b.Run(kind.String(), func(b *testing.B) {
			benchRun(b, expt.Spec{Algo: expt.AMS, P: 64, PerPE: 5_000, Levels: 2, Seed: 10,
				Kind: kind, TieBreak: true})
		})
	}
}

// BenchmarkWireEncode measures the wire codec's serialization
// throughput for bulk element slices (the dominant payload of the TCP
// backend's data-delivery phase). bytes/s ≈ encode GB/s.
func BenchmarkWireEncode(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("u64s-%d", n), func(b *testing.B) {
			payload := workload.Local(workload.Uniform, 1, 1, n, 0)
			w := wire.NewWriter()
			buf, err := w.AppendPayload(nil, payload)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, err = w.AppendPayload(buf[:0], payload)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireDecode measures deserialization throughput for bulk
// element slices on the transport's frame path: aligned encoding,
// decoded as zero-copy views of the frame buffer (what netcomm.readLoop
// does, with the buffer handed off to the payload). The per-frame cost
// is parsing plus one slice-header construction — no copy, no
// allocation per element.
func BenchmarkWireDecode(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("u64s-%d", n), func(b *testing.B) {
			payload := workload.Local(workload.Uniform, 1, 1, n, 0)
			segs, err := wire.NewWriter().AppendPayloadVec(nil, payload,
				wire.VecOptions{Aligned: wire.HostLittleEndian()})
			if err != nil {
				b.Fatal(err)
			}
			var buf []byte
			for _, s := range segs {
				buf = append(buf, s...)
			}
			r := wire.NewReader()
			opt := wire.DecodeOptions{Aligned: wire.HostLittleEndian(), Alias: true}
			if _, _, _, err := r.DecodePayloadOpt(buf, opt); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := r.DecodePayloadOpt(buf, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireDecodeCopy measures the copying decode path — what the
// chaos middleware's forced serialization and big-endian peers pay:
// every payload is carved out of the reader's bump arena and memmoved.
func BenchmarkWireDecodeCopy(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("u64s-%d", n), func(b *testing.B) {
			payload := workload.Local(workload.Uniform, 1, 1, n, 0)
			buf, err := wire.NewWriter().AppendPayload(nil, payload)
			if err != nil {
				b.Fatal(err)
			}
			r := wire.NewReader()
			if _, _, err := r.DecodePayload(buf); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Grow(len(buf))
				if _, _, err := r.DecodePayload(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireRoundtripTagged measures the structural (reflection-
// compiled) codec on the tagged sample slices of splitter selection —
// the hot non-bulk payload.
func BenchmarkWireRoundtripTagged(b *testing.B) {
	type tag struct {
		key uint64
		pe  int32
		idx int32
	}
	wire.Register[[]tag]()
	const n = 1 << 12
	payload := make([]tag, n)
	for i := range payload {
		payload[i] = tag{key: uint64(i) * 0x9e3779b97f4a7c15, pe: int32(i % 64), idx: int32(i)}
	}
	w, r := wire.NewWriter(), wire.NewReader()
	buf, err := w.AppendPayload(nil, payload)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := r.DecodePayload(buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = w.AppendPayload(buf[:0], payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.DecodePayload(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPCluster runs AMS-sort on an in-process loopback TCP
// cluster (real sockets, real serialization; the ranks share this
// process's cores, so treat it as a transport benchmark, not a scaling
// one).
func BenchmarkTCPCluster(b *testing.B) {
	const p = 4
	for _, perPE := range []int{1_000, 25_000} {
		b.Run(fmt.Sprintf("ams-p%d-n%d", p, perPE), func(b *testing.B) {
			addrs, err := expt.ReserveLoopbackAddrs(p)
			if err != nil {
				b.Fatal(err)
			}
			clusters := make([]*TCPCluster, p)
			var wg sync.WaitGroup
			for rank := 0; rank < p; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					cl, err := NewTCP(rank, addrs)
					if err != nil {
						b.Errorf("rank %d: %v", rank, err)
						return
					}
					clusters[rank] = cl
				}(rank)
			}
			wg.Wait()
			if b.Failed() {
				return
			}
			defer func() {
				b.StopTimer()
				// Close concurrently, like real rank processes do: a
				// closing endpoint waits for its peers' EOFs.
				var cwg sync.WaitGroup
				for _, cl := range clusters {
					cwg.Add(1)
					go func(cl *TCPCluster) {
						defer cwg.Done()
						cl.Close()
					}(cl)
				}
				cwg.Wait()
			}()
			locals := make([][]uint64, p)
			for rank := range locals {
				locals[rank] = workload.Local(workload.Uniform, 42, p, perPE, rank)
			}
			b.SetBytes(int64(8 * p * perPE))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var run sync.WaitGroup
				for rank := 0; rank < p; rank++ {
					run.Add(1)
					go func(rank int) {
						defer run.Done()
						_, err := clusters[rank].Run(func(c Communicator) {
							data := append([]uint64(nil), locals[rank]...)
							_, _ = AMSSort(c, data, u64Less, Config{Levels: 1, Seed: 42 + uint64(i)})
						})
						if err != nil {
							b.Errorf("rank %d: %v", rank, err)
						}
					}(rank)
				}
				run.Wait()
				if b.Failed() {
					return
				}
			}
		})
	}
}
