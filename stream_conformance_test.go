package pmsort

import (
	"fmt"
	"reflect"
	"testing"

	"pmsort/internal/comm"
	"pmsort/internal/native"
	"pmsort/internal/workload"
)

// TestStreamedDeliveryConformance pins that the receive-driven delivery
// consumers (DeliveryOptions.Batch unset — the default) produce output
// byte-identical to the original materialize-then-process path
// (Batch: true), for both sorters, both kernels, and both exchange
// algorithms, on the native backend across several workloads. The
// torture harness additionally randomizes the knob across seeds and
// backends; this test is the direct A/B pin.
func TestStreamedDeliveryConformance(t *testing.T) {
	const p, perPE = 5, 600
	for _, algo := range []string{"ams", "rlm"} {
		for _, keyed := range []bool{false, true} {
			for _, strat := range []DeliveryStrategy{DeliverySimple, DeliveryDeterministic} {
				for _, kind := range []workload.Kind{workload.Uniform, workload.DupHeavy, workload.OnePE} {
					name := fmt.Sprintf("%s/keyed=%v/%v/%v", algo, keyed, strat, kind)
					t.Run(name, func(t *testing.T) {
						run := func(batch bool) [][]uint64 {
							cfg := Config{Levels: 2, Seed: 99, TieBreak: true}
							cfg.Delivery.Strategy = strat
							cfg.Delivery.Exchange = DeliveryExchange(len(name) % 2)
							cfg.Delivery.Batch = batch
							if keyed {
								cfg.Key = u64Key
							}
							outs := make([][]uint64, p)
							native.New(p).Run(func(c comm.Communicator) {
								data := workload.Local(kind, 7, p, perPE, c.Rank())
								var out []uint64
								if algo == "ams" {
									out, _ = AMSSort(c, data, u64Less, cfg)
								} else {
									out, _ = RLMSort(c, data, u64Less, cfg)
								}
								outs[c.Rank()] = out
							})
							return outs
						}
						batch, streamed := run(true), run(false)
						if !reflect.DeepEqual(batch, streamed) {
							t.Fatalf("streamed output differs from batch output")
						}
					})
				}
			}
		}
	}
}
