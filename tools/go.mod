module pmsort/tools

go 1.23

require pmsort v0.0.0

replace pmsort => ../
