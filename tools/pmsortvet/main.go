// Command pmsortvet (tools-module build) is the same driver as
// cmd/pmsortvet, housed in the nested pmsort/tools module. The nested
// module exists so that heavyweight analysis dependencies — notably
// golang.org/x/tools, if the stand-in framework under internal/analysis
// is ever swapped for the upstream go/analysis packages — never enter
// the root module's dependency graph. Build it from the tools
// directory:
//
//	cd tools && go build ./pmsortvet
//
// (`go run ./tools/pmsortvet` from the repo root does not work: the
// root module does not contain the nested module's packages.)
package main

import (
	"os"

	"pmsort/internal/analysis/vetsuite"
)

func main() {
	os.Exit(vetsuite.Main(os.Args[1:], os.Stdout, os.Stderr))
}
