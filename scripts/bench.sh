#!/usr/bin/env sh
# Runs the benchmark suites and records the results twice per suite:
# BENCH_<suite>.txt in the standard `go test -bench` format (the input
# benchstat wants for A/B comparisons against a previous run) and
# BENCH_<suite>.json (the same measurements as structured records, via
# cmd/benchjson) so the perf trajectory can accumulate machine-readably
# across PRs.
#
#   scripts/bench.sh            # native suite: Native|Wire|TCPCluster, count=6
#   scripts/bench.sh -tcp       # distributed suite: loopback p=4 AMS/RLM,
#                               #   alltoallv, wire codec -> BENCH_tcp.{txt,json}
#   COUNT=10 PATTERN=NativeAMS scripts/bench.sh
#   benchstat old/BENCH_native.txt BENCH_native.txt
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "-tcp" ]; then
    # The TCP benchmarks move 8 MB through real loopback sockets per
    # op; a bounded iteration count keeps the suite under a few
    # minutes while benchstat still gets COUNT samples per benchmark.
    COUNT="${COUNT:-6}"
    PATTERN="${PATTERN:-TCPAMS|TCPRLM|TCPAlltoallv|Wire}"
    TXT="${TXT:-BENCH_tcp.txt}"
    JSON="${JSON:-BENCH_tcp.json}"
    BENCHTIME="${BENCHTIME:-5x}"
else
    COUNT="${COUNT:-6}"
    PATTERN="${PATTERN:-Native|Wire|TCPCluster}"
    TXT="${TXT:-BENCH_native.txt}"
    JSON="${JSON:-BENCH_native.json}"
    BENCHTIME="${BENCHTIME:-1s}"
fi

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$TXT"
go run ./cmd/benchjson -in "$TXT" -out "$JSON"
echo "wrote $TXT (benchstat input) and $JSON" >&2
