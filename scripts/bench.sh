#!/usr/bin/env sh
# Runs the native-backend (and wire/TCP) benchmarks and records the
# results twice: BENCH_native.txt in the standard `go test -bench`
# format (the input benchstat wants for A/B comparisons against a
# previous run) and BENCH_native.json (the same measurements as
# structured records, via cmd/benchjson) so the perf trajectory can
# accumulate machine-readably across PRs.
#
#   scripts/bench.sh                 # default: Native|Wire|TCPCluster, count=6
#   COUNT=10 PATTERN=NativeAMS scripts/bench.sh
#   benchstat old/BENCH_native.txt BENCH_native.txt
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-6}"
PATTERN="${PATTERN:-Native|Wire|TCPCluster}"
TXT="${TXT:-BENCH_native.txt}"
JSON="${JSON:-BENCH_native.json}"

go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" . | tee "$TXT"
go run ./cmd/benchjson -in "$TXT" -out "$JSON"
echo "wrote $TXT (benchstat input) and $JSON" >&2
