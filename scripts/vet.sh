#!/usr/bin/env bash
# vet.sh — run the repo's full static-analysis gate locally: exactly
# what CI's static-analysis job runs. From the repo root:
#
#   scripts/vet.sh            # go vet + pmsortvet (+ govulncheck if present)
#   scripts/vet.sh -only tagrange ./internal/coll   # pass-through args
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== pmsortvet =="
if [ $# -gt 0 ]; then
	go run ./cmd/pmsortvet "$@"
else
	go run ./cmd/pmsortvet ./...
fi

# The nested tools module hosts the same driver (and is where the
# x/tools dependency would live); keep it compiling.
echo "== tools module build =="
(cd tools && go build -o /dev/null ./pmsortvet)

echo "== govulncheck =="
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "govulncheck not installed; skipping (CI installs it)"
fi

echo "static analysis clean"
