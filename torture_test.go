package pmsort

// Property-based torture suite: randomized (sorter × backend × p × n ×
// distribution × config × element type) scenarios under the chaos
// middleware, asserting the paper's invariants — globally sorted
// output, multiset preservation, bounded imbalance, and byte-identical
// results across backends. Each case derives entirely from one seed;
// a failure reproduces with `sortbench -experiment torture -seed N`.
//
// Entry points:
//
//	go test -run TestTortureSweep                      # fixed sweep
//	go test -run TestTortureSeeded -args -torture.seeds=11,22
//	go test -fuzz FuzzSortConformance -fuzztime 30s .  # keep exploring
//	go test -args -torture.n=200                       # a longer sweep

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"pmsort/internal/expt"
)

var (
	tortureSeeds = flag.String("torture.seeds", "",
		"comma-separated torture seeds for TestTortureSeeded (CI chaos matrix)")
	tortureN = flag.Int("torture.n", 48,
		"number of consecutive-seed cases TestTortureSweep runs")
	tortureBase = flag.Uint64("torture.base", 1000,
		"first seed of the TestTortureSweep range")
)

// TestTortureSweep runs a deterministic range of torture cases. The
// default budget keeps `go test ./...` fast; CI and soak runs raise
// -torture.n.
func TestTortureSweep(t *testing.T) {
	n := *tortureN
	if testing.Short() {
		n = 8
	}
	for i := 0; i < n; i++ {
		seed := *tortureBase + uint64(i)
		t.Run(fmt.Sprint("seed=", seed), func(t *testing.T) {
			tc := expt.DeriveTorture(seed)
			if _, err := expt.RunTorture(tc); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTortureSeeded runs exactly the seeds given via -torture.seeds —
// the CI chaos matrix pins three fixed seeds under -race, and a
// developer replays any failing seed the same way.
func TestTortureSeeded(t *testing.T) {
	if *tortureSeeds == "" {
		t.Skip("no -torture.seeds given")
	}
	for _, s := range strings.Split(*tortureSeeds, ",") {
		seed, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			t.Fatalf("bad seed %q: %v", s, err)
		}
		t.Run(fmt.Sprint("seed=", seed), func(t *testing.T) {
			tc := expt.DeriveTorture(seed)
			line, err := expt.RunTorture(tc)
			if err != nil {
				t.Fatal(err)
			}
			t.Log(line)
		})
	}
}

// TestTortureNetFaultLeg guarantees the network-fault dimension runs
// in every `go test` regardless of which sweep seeds happen to draw
// it: a real TCP loopback leg under the mild seeded netfault profile
// (latency, jitter, torn writes, sub-window read stalls) plus
// heartbeats must still satisfy every sort invariant, and the
// harness's engagement check proves the injector actually fired.
func TestTortureNetFaultLeg(t *testing.T) {
	tc := expt.DeriveTorture(84) // AMS p=4 — any seed works, faults are forced below
	tc.TCP = true
	tc.NetFault = true
	if tc.Spec.P > 4 {
		tc.Spec.P = 4
	}
	line, err := expt.RunTorture(tc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(line)
}

// TestTortureDerivationIsPure pins the repro contract: deriving a case
// from a seed twice yields the identical case (no hidden global state),
// so the seed alone is a complete failure description.
func TestTortureDerivationIsPure(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		a, b := expt.DeriveTorture(seed), expt.DeriveTorture(seed)
		if a != b {
			t.Fatalf("seed %d derived two different cases:\n%v\n%v", seed, a, b)
		}
		if a.Spec.P < 1 || a.Spec.PerPE < 1 || a.Spec.Levels < 1 {
			t.Fatalf("seed %d derived a degenerate case: %v", seed, a)
		}
	}
}

// TestWrapChaosPublicAPI drives the exported chaos surface end to end:
// a user wraps the world communicator of a native cluster, sorts, and
// reads the audit back — no internal imports required.
func TestWrapChaosPublicAPI(t *testing.T) {
	const p, perPE = 4, 200
	aud := &ChaosAudit{}
	cfg := ChaosConfig{Seed: 12, Shake: true, ForceSerialize: true, Audit: aud}
	locals := conformanceInput(p, perPE)

	plain := make([][]uint64, p)
	NewNative(p).Run(func(c Communicator) {
		out, _ := AMSSort(c, append([]uint64(nil), locals[c.Rank()]...), u64Less,
			Config{Levels: 2, Seed: 11, TieBreak: true})
		plain[c.Rank()] = out
	})
	wrapped := make([][]uint64, p)
	NewNative(p).Run(func(c Communicator) {
		out, _ := AMSSort(WrapChaos(c, cfg), append([]uint64(nil), locals[c.Rank()]...), u64Less,
			Config{Levels: 2, Seed: 11, TieBreak: true})
		wrapped[c.Rank()] = out
	})
	for rank := range plain {
		if len(plain[rank]) != len(wrapped[rank]) {
			t.Fatalf("PE %d: chaos changed the output length %d -> %d",
				rank, len(plain[rank]), len(wrapped[rank]))
		}
		for i := range plain[rank] {
			if plain[rank][i] != wrapped[rank][i] {
				t.Fatalf("PE %d element %d: chaos changed the output", rank, i)
			}
		}
	}
	if vs := aud.Violations(); len(vs) != 0 {
		t.Fatalf("clean sort flagged: %v", vs)
	}
	if msgs, _, _ := aud.Messages(); msgs == 0 {
		t.Fatal("middleware not engaged")
	}
}

// FuzzSortConformance is the native fuzz target over the same property:
// the fuzzer explores the seed space beyond the fixed sweep, and any
// crasher it minimizes is immediately a sortbench repro line.
func FuzzSortConformance(f *testing.F) {
	for seed := uint64(0); seed < 12; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		tc := expt.DeriveTorture(seed)
		// Keep single fuzz executions snappy: cap the largest grids and
		// skip the TCP leg (real sockets and rendezvous would dominate
		// the fuzzing budget; the sweep and the CI matrix cover it).
		tc.TCP = false
		if tc.Spec.P > 8 {
			tc.Spec.P = 8
		}
		if tc.Spec.PerPE > 150 {
			tc.Spec.PerPE = 150
		}
		if _, err := expt.RunTorture(tc); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTortureReportsFailures pins the harness's own alarm wire: a case
// with a deliberately broken invariant check must fail, proving the
// sweep is not vacuously green. We misuse the multiset hash by feeding
// a sorter that drops nothing through a harness primed with a wrong
// expected count — simplest is to run a case and tamper with the
// derived spec so an assertion must trip: Bitonic requires a
// power-of-two p, so p=3 panics inside the sorter and the harness must
// surface that as an error, not a hang or a silent pass.
func TestTortureReportsFailures(t *testing.T) {
	tc := expt.DeriveTorture(4242)
	tc.Spec.Algo = expt.Bitonic
	tc.Spec.P = 3
	tc.Spec.PerPE = 10
	tc.TCP = false
	if _, err := expt.RunTorture(tc); err == nil {
		t.Fatal("broken case reported success")
	} else if !strings.Contains(err.Error(), "seed") {
		t.Errorf("failure does not name the repro seed: %v", err)
	}
}
