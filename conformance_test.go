package pmsort

import (
	"math/rand"
	"testing"

	"pmsort/internal/workload"
)

// conformanceCase is one sorter driven through both backends.
type conformanceCase struct {
	name string
	run  func(c Communicator, data []uint64) []uint64
}

// conformanceCases covers AMS, RLM, and one baseline, as different
// exercise profiles: AMS with tie-breaking on duplicate-heavy data (all
// of sampling, fwis, grouping, delivery), RLM (multisequence selection,
// multiway merging), and GV-sample-sort (centralized splitters, direct
// all-to-all).
func conformanceCases() []conformanceCase {
	return []conformanceCase{
		{"AMS", func(c Communicator, d []uint64) []uint64 {
			out, _ := AMSSort(c, d, u64Less, Config{Levels: 2, Seed: 11, TieBreak: true})
			return out
		}},
		{"RLM", func(c Communicator, d []uint64) []uint64 {
			out, _ := RLMSort(c, d, u64Less, Config{Levels: 2, Seed: 11})
			return out
		}},
		{"GV", func(c Communicator, d []uint64) []uint64 {
			out, _ := GVSampleSort(c, d, u64Less, 11)
			return out
		}},
		// The AMS and RLM cases above run the comparator path with the
		// automatically derived prefix cache active (uint64 elements);
		// this leg pins the plain comparator path (NoPrefix) to the same
		// cross-backend identity, so prefix-on and prefix-off both hold
		// byte identity across sim, native, and the TCP cluster.
		{"AMS-noprefix", func(c Communicator, d []uint64) []uint64 {
			out, _ := AMSSort(c, d, u64Less, Config{Levels: 2, Seed: 11, TieBreak: true, NoPrefix: true})
			return out
		}},
	}
}

// conformanceInput builds deterministic per-PE inputs with heavy key
// duplication (so tie-breaking paths run).
func conformanceInput(p, perPE int) [][]uint64 {
	locals := make([][]uint64, p)
	rng := rand.New(rand.NewSource(1234))
	for rank := range locals {
		loc := make([]uint64, perPE)
		for i := range loc {
			loc[i] = rng.Uint64() % 512
		}
		locals[rank] = loc
	}
	return locals
}

// TestBackendConformance asserts that the simulated and the native
// backend produce byte-identical globally sorted output from the same
// seeded input: every collective is deterministic, so the backend must
// not influence a single element's placement.
func TestBackendConformance(t *testing.T) {
	const p, perPE = 8, 300
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			locals := conformanceInput(p, perPE)

			simOuts := make([][]uint64, p)
			cl := New(p)
			cl.Run(func(pe *PE) {
				simOuts[pe.Rank()] = tc.run(World(pe), append([]uint64(nil), locals[pe.Rank()]...))
			})

			natOuts := make([][]uint64, p)
			ncl := NewNative(p)
			if ncl.P() != p {
				t.Fatalf("NewNative(%d).P() = %d", p, ncl.P())
			}
			ncl.Run(func(c Communicator) {
				natOuts[c.Rank()] = tc.run(c, append([]uint64(nil), locals[c.Rank()]...))
			})

			total := 0
			for rank := 0; rank < p; rank++ {
				if len(simOuts[rank]) != len(natOuts[rank]) {
					t.Fatalf("PE %d: sim has %d elements, native %d",
						rank, len(simOuts[rank]), len(natOuts[rank]))
				}
				for i := range simOuts[rank] {
					if simOuts[rank][i] != natOuts[rank][i] {
						t.Fatalf("PE %d element %d: sim %d != native %d",
							rank, i, simOuts[rank][i], natOuts[rank][i])
					}
				}
				total += len(simOuts[rank])
			}
			if total != p*perPE {
				t.Fatalf("lost elements: %d of %d", total, p*perPE)
			}
		})
	}
}

// conformanceKinds is every input distribution the workload package
// generates. The sweep below runs each one through both in-process
// backends: the distributions exercise disjoint robustness paths
// (duplicate-heavy tie-breaking, skew, presortedness, and — OnePE — the
// case where every rank but 0 starts with an empty/nil local slice).
func conformanceKinds() []workload.Kind {
	return []workload.Kind{
		workload.Uniform, workload.Skewed, workload.DupHeavy,
		workload.Sorted, workload.Reverse, workload.AlmostSorted,
		workload.OnePE,
	}
}

// TestBackendConformanceAllKinds sweeps every workload distribution
// through the simulated and native backends and asserts byte-identical
// output for AMS, RLM, and GV-sample-sort — not just the one input
// profile of TestBackendConformance.
func TestBackendConformanceAllKinds(t *testing.T) {
	const p, perPE = 6, 200
	for _, kind := range conformanceKinds() {
		for _, tc := range conformanceCases() {
			t.Run(kind.String()+"/"+tc.name, func(t *testing.T) {
				locals := make([][]uint64, p)
				for rank := range locals {
					locals[rank] = workload.Local(kind, 99, p, perPE, rank)
				}

				simOuts := make([][]uint64, p)
				cl := New(p)
				cl.Run(func(pe *PE) {
					simOuts[pe.Rank()] = tc.run(World(pe), append([]uint64(nil), locals[pe.Rank()]...))
				})

				natOuts := make([][]uint64, p)
				ncl := NewNative(p)
				ncl.Run(func(c Communicator) {
					natOuts[c.Rank()] = tc.run(c, append([]uint64(nil), locals[c.Rank()]...))
				})

				total, want := 0, 0
				var prev uint64
				for rank := 0; rank < p; rank++ {
					want += len(locals[rank])
					if len(simOuts[rank]) != len(natOuts[rank]) {
						t.Fatalf("PE %d: sim has %d elements, native %d",
							rank, len(simOuts[rank]), len(natOuts[rank]))
					}
					for i := range simOuts[rank] {
						if simOuts[rank][i] != natOuts[rank][i] {
							t.Fatalf("PE %d element %d: sim %d != native %d",
								rank, i, simOuts[rank][i], natOuts[rank][i])
						}
						if simOuts[rank][i] < prev {
							t.Fatalf("PE %d element %d: global order violated", rank, i)
						}
						prev = simOuts[rank][i]
					}
					total += len(simOuts[rank])
				}
				if total != want {
					t.Fatalf("lost elements: %d of %d", total, want)
				}
			})
		}
	}
}

// TestNilLocalInputs pins down the OnePE contract: workload.Local
// returns nil (not just empty) on every rank but 0, and every sorter —
// AMS, RLM, and all baselines — must accept nil local slices on both
// in-process backends without panicking or losing elements.
func TestNilLocalInputs(t *testing.T) {
	const p, perPE = 4, 120 // power of two: bitonic and hcq require it
	for rank := 1; rank < p; rank++ {
		if loc := workload.Local(workload.OnePE, 3, p, perPE, rank); loc != nil {
			t.Fatalf("workload.Local(OnePE) on rank %d = %v, want nil", rank, loc)
		}
	}
	sorters := []struct {
		name string
		run  func(c Communicator, d []uint64) []uint64
	}{
		{"AMS", func(c Communicator, d []uint64) []uint64 {
			out, _ := AMSSort(c, d, u64Less, Config{Levels: 2, Seed: 5, TieBreak: true})
			return out
		}},
		{"RLM", func(c Communicator, d []uint64) []uint64 {
			out, _ := RLMSort(c, d, u64Less, Config{Levels: 2, Seed: 5})
			return out
		}},
		{"GV", func(c Communicator, d []uint64) []uint64 {
			out, _ := GVSampleSort(c, d, u64Less, 5)
			return out
		}},
		{"MP", func(c Communicator, d []uint64) []uint64 {
			out, _ := MPSort(c, d, u64Less, 5)
			return out
		}},
		{"Bitonic", func(c Communicator, d []uint64) []uint64 {
			out, _ := BitonicSort(c, d, u64Less, 5)
			return out
		}},
		{"Histogram", func(c Communicator, d []uint64) []uint64 {
			out, _ := HistogramSort(c, d, u64Less, 0.05, 5)
			return out
		}},
		{"HCQuicksort", func(c Communicator, d []uint64) []uint64 {
			out, _ := HCQuicksort(c, d, u64Less, 5)
			return out
		}},
	}
	backends := []struct {
		name string
		run  func(fn func(c Communicator))
	}{
		{"sim", func(fn func(c Communicator)) {
			New(p).Run(func(pe *PE) { fn(World(pe)) })
		}},
		{"native", func(fn func(c Communicator)) {
			NewNative(p).Run(fn)
		}},
	}
	for _, s := range sorters {
		for _, b := range backends {
			t.Run(s.name+"/"+b.name, func(t *testing.T) {
				outs := make([][]uint64, p)
				b.run(func(c Communicator) {
					outs[c.Rank()] = s.run(c, workload.Local(workload.OnePE, 3, p, perPE, c.Rank()))
				})
				total := 0
				var prev uint64
				for rank, out := range outs {
					for i, v := range out {
						if v < prev {
							t.Fatalf("order violation at PE %d index %d", rank, i)
						}
						prev = v
					}
					total += len(out)
				}
				if total != p*perPE {
					t.Fatalf("lost elements: %d of %d", total, p*perPE)
				}
			})
		}
	}
}

// TestNativeGloballySorted validates the native backend's output
// contract on its own (ordering across PE boundaries and permutation
// preservation), independent of the simulator.
func TestNativeGloballySorted(t *testing.T) {
	const p, perPE = 6, 500
	locals := conformanceInput(p, perPE)
	outs := make([][]uint64, p)
	ncl := NewNative(p)
	elapsed := ncl.Run(func(c Communicator) {
		out, st := AMSSort(c, append([]uint64(nil), locals[c.Rank()]...), u64Less,
			Config{Levels: 1, Seed: 7, TieBreak: true})
		if st.TotalNS < 0 {
			t.Errorf("PE %d: negative wall-clock total %d", c.Rank(), st.TotalNS)
		}
		outs[c.Rank()] = out
	})
	if elapsed <= 0 {
		t.Errorf("Run reported non-positive makespan %v", elapsed)
	}
	var prev uint64
	total := 0
	for rank, out := range outs {
		for i, v := range out {
			if v < prev {
				t.Fatalf("order violation at PE %d index %d", rank, i)
			}
			prev = v
		}
		total += len(out)
	}
	if total != p*perPE {
		t.Fatalf("lost elements: %d of %d", total, p*perPE)
	}
}

// TestNativeBuildingBlocks drives Multiselect and Deliver through the
// native backend — the public building blocks must be backend-neutral
// too.
func TestNativeBuildingBlocks(t *testing.T) {
	const p = 6
	ncl := NewNative(p)
	ncl.Run(func(c Communicator) {
		local := make([]uint64, 10)
		for i := range local {
			local[i] = uint64(c.Rank()*10 + i)
		}
		pos := Multiselect(c, local, []int64{30}, u64Less, 5)
		want := 0
		if c.Rank() < 3 {
			want = 10
		}
		if len(pos) != 1 || pos[0] != want {
			t.Errorf("PE %d: Multiselect = %v, want [%d]", c.Rank(), pos, want)
		}
		pieces := [][]uint64{{1}, {2, 3, 4}}
		chunks := Deliver(c, pieces, DeliveryOptions{Strategy: DeliveryDeterministic, Seed: 5})
		total := 0
		for _, ch := range chunks {
			total += len(ch)
		}
		want = 2
		if c.Rank() >= p/2 {
			want = 6
		}
		if total != want {
			t.Errorf("PE %d received %d elements, want %d", c.Rank(), total, want)
		}
	})
}
